// Benchmark application interface.
//
// The paper evaluates six kernels representative of near-sensor computing
// and embedded machine learning: JACOBI, KNN, PCA, DWT, SVM and CONV
// (Section V-A). Each application here:
//
//   * declares its tunable variable groups ("signals" — program variables
//     or arrays whose FP format the tuning tool controls);
//   * generates deterministic synthetic inputs per input-set index (the
//     tuner's statistical refinement runs over several input sets);
//   * runs its kernel against a TpContext under an arbitrary per-signal
//     format assignment, inserting explicit casts where differently-typed
//     values meet (the type system forbids implicit mixing), and tagging
//     its vectorizable sections.
//
// One kernel source therefore serves as: the binary32 baseline, every
// precision-tuning trial, the final mixed-format build, and the traced
// run measured by the virtual platform.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/context.hpp"
#include "types/format.hpp"

namespace tp::apps {

/// A tunable variable group: one program variable or array.
struct SignalSpec {
    std::string name;
    std::size_t elements = 1; // memory locations it contributes (Fig. 4 weights)
};

/// Per-signal format assignment.
class TypeConfig {
public:
    TypeConfig() = default;

    void set(const std::string& signal, FpFormat format) {
        formats_[signal] = format;
    }

    [[nodiscard]] FpFormat at(const std::string& signal) const {
        const auto it = formats_.find(signal);
        if (it == formats_.end()) {
            throw std::out_of_range("TypeConfig: unknown signal '" + signal + "'");
        }
        return it->second;
    }

    [[nodiscard]] const std::map<std::string, FpFormat>& formats() const noexcept {
        return formats_;
    }

private:
    std::map<std::string, FpFormat> formats_;
};

class App {
public:
    virtual ~App() = default;

    [[nodiscard]] virtual std::string_view name() const = 0;
    [[nodiscard]] virtual std::vector<SignalSpec> signals() const = 0;

    /// Deep copy, including any prepared workload. The parallel tuning
    /// engine gives each worker thread its own clone so trial evaluations
    /// never share mutable state.
    [[nodiscard]] virtual std::unique_ptr<App> clone() const = 0;

    /// Regenerates the workload for the given input set (deterministic).
    virtual void prepare(unsigned input_set) = 0;

    /// Executes the kernel under `config` and returns the program output
    /// (the sequence the quality constraint is evaluated on).
    virtual std::vector<double> run(sim::TpContext& ctx, const TypeConfig& config) = 0;

    /// Same format for every signal (e.g. the binary32 baseline).
    [[nodiscard]] TypeConfig uniform_config(FpFormat format) const;

    /// Reference output: binary64 throughout, no tracing.
    [[nodiscard]] std::vector<double> golden(unsigned input_set);
};

/// Names of all six applications, in the paper's order.
[[nodiscard]] const std::vector<std::string>& app_names();

/// Factory; throws std::out_of_range for unknown names.
[[nodiscard]] std::unique_ptr<App> make_app(std::string_view name);

/// All six applications.
[[nodiscard]] std::vector<std::unique_ptr<App>> make_all_apps();

/// Casts `v` to `format` unless it already has it (emitting the cast
/// instruction a mixed-format expression requires).
[[nodiscard]] inline sim::TpValue to(const sim::TpValue& v, FpFormat format) {
    return v.format() == format ? v : v.cast_to(format);
}

} // namespace tp::apps
