// DWT — two-level discrete wavelet transform with the Daubechies-4 filter
// pair (paper, Section V-A).
//
// Each output coefficient is a 4-tap filter-and-downsample: four
// independent multiplies reduced by a small tree, a textbook target for
// sub-word SIMD. The analysis loops are tagged vectorizable.
#include <array>
#include <cstddef>

#include "apps/app.hpp"
#include "util/random.hpp"

namespace tp::apps {
namespace {

constexpr std::size_t kLength = 128; // input samples (two levels: 64 + 32)
constexpr std::size_t kTaps = 4;

// Daubechies-4 analysis coefficients.
constexpr double kSqrt3 = 1.7320508075688772;
constexpr double kNorm = 5.656854249492381; // 4 * sqrt(2)
constexpr std::array<double, kTaps> kLo{
    (1.0 + kSqrt3) / kNorm, (3.0 + kSqrt3) / kNorm,
    (3.0 - kSqrt3) / kNorm, (1.0 - kSqrt3) / kNorm};
constexpr std::array<double, kTaps> kHi{
    kLo[3], -kLo[2], kLo[1], -kLo[0]};

class Dwt final : public App {
public:
    // SignalIds, in declaration order.
    enum : SignalId { kSignalSig, kLoSig, kHiSig, kAccSig, kApproxSig, kDetailSig };

    Dwt()
        : App({
              {"signal", kLength},           // input samples
              {"lo", kTaps},                 // low-pass filter taps
              {"hi", kTaps},                 // high-pass filter taps
              {"acc", 1},                    // tap accumulator register
              {"approx", kLength / 2 + kLength / 4}, // approximation coeffs
              {"detail", kLength / 2 + kLength / 4}, // detail coeffs
          }) {}

    [[nodiscard]] std::string_view name() const override { return "dwt"; }

    [[nodiscard]] std::unique_ptr<App> clone() const override {
        return std::make_unique<Dwt>(*this);
    }

    void prepare(unsigned input_set) override {
        util::Xoshiro256 rng{0xD317AB1EULL + input_set};
        signal_.assign(kLength, 0.0);
        const double phase = rng.uniform(0.0, 6.28);
        for (std::size_t i = 0; i < kLength; ++i) {
            const double t = static_cast<double>(i);
            signal_[i] = 60.0 * __builtin_sin(t * 0.19634954084936207) // 2*pi/32
                         + 25.0 * __builtin_sin(t * 1.2566370614359172 + phase)
                         + rng.normal(0.0, 4.0);
        }
    }

    std::vector<double> run(sim::TpContext& ctx, const TypeConfig& config) override {
        const FpFormat signal_f = config.at(kSignalSig);
        const FpFormat lo_f = config.at(kLoSig);
        const FpFormat hi_f = config.at(kHiSig);
        const FpFormat acc_f = config.at(kAccSig);
        const FpFormat approx_f = config.at(kApproxSig);
        const FpFormat detail_f = config.at(kDetailSig);

        sim::TpArray input = ctx.make_array(signal_f, kLength);
        for (std::size_t i = 0; i < kLength; ++i) input.set_raw(i, signal_[i]);
        sim::TpArray lo = ctx.make_array(lo_f, kTaps);
        sim::TpArray hi = ctx.make_array(hi_f, kTaps);
        for (std::size_t t = 0; t < kTaps; ++t) {
            lo.set_raw(t, kLo[t]);
            hi.set_raw(t, kHi[t]);
        }
        sim::TpArray approx = ctx.make_array(approx_f, kLength / 2 + kLength / 4);
        sim::TpArray detail = ctx.make_array(detail_f, kLength / 2 + kLength / 4);

        // Filter taps are register-resident across the whole transform.
        std::array<sim::TpValue, kTaps> lo_r;
        std::array<sim::TpValue, kTaps> hi_r;
        for (std::size_t t = 0; t < kTaps; ++t) {
            lo_r[t] = to(lo.load(t), acc_f);
            hi_r[t] = to(hi.load(t), acc_f);
        }

        // Level 1 reads the input array; level 2 reads level-1 approximations.
        analyze(ctx, input, 0, kLength, approx, detail, 0, lo_r, hi_r, acc_f);
        analyze(ctx, approx, 0, kLength / 2, approx, detail, kLength / 2, lo_r,
                hi_r, acc_f);

        // Output: level-2 approximations and details, then level-1 details.
        std::vector<double> output;
        output.reserve(kLength);
        for (std::size_t i = 0; i < kLength / 4; ++i) {
            output.push_back(approx.raw(kLength / 2 + i));
        }
        for (std::size_t i = 0; i < kLength / 4; ++i) {
            output.push_back(detail.raw(kLength / 2 + i));
        }
        for (std::size_t i = 0; i < kLength / 2; ++i) {
            output.push_back(detail.raw(i));
        }
        return output;
    }

private:
    void analyze(sim::TpContext& ctx, sim::TpArray& src, std::size_t src_off,
                 std::size_t len, sim::TpArray& approx, sim::TpArray& detail,
                 std::size_t dst_off, const std::array<sim::TpValue, kTaps>& lo_r,
                 const std::array<sim::TpValue, kTaps>& hi_r, FpFormat acc_f) {
        const auto region = ctx.vector_region();
        for (std::size_t n = 0; n < len / 2; ++n) {
            ctx.loop_iteration();
            ctx.int_ops(2); // periodic index wrap
            std::array<sim::TpValue, kTaps> sample;
            for (std::size_t t = 0; t < kTaps; ++t) {
                const std::size_t idx = src_off + (2 * n + t) % len;
                ctx.int_ops(2); // periodic index computation per tap
                sample[t] = to(src.load(idx), acc_f);
            }
            // Four independent products per band, reduced by a tree.
            std::array<sim::TpValue, kTaps> pl;
            std::array<sim::TpValue, kTaps> ph;
            for (std::size_t t = 0; t < kTaps; ++t) {
                pl[t] = sample[t] * lo_r[t];
                ph[t] = sample[t] * hi_r[t];
            }
            const sim::TpValue a = (pl[0] + pl[1]) + (pl[2] + pl[3]);
            const sim::TpValue d = (ph[0] + ph[1]) + (ph[2] + ph[3]);
            approx.store(dst_off + n, to(a, approx.format()));
            detail.store(dst_off + n, to(d, detail.format()));
        }
    }

    std::vector<double> signal_;
};

} // namespace

std::unique_ptr<App> make_dwt() { return std::make_unique<Dwt>(); }

} // namespace tp::apps
