#include "flexfloat/arith_backend.hpp"

#include <cstdlib>
#include <cstring>

namespace tp::arith::detail {

bool read_env_force_emulated() noexcept {
    const char* value = std::getenv("TP_FORCE_EMULATED");
    if (value == nullptr) return false;
    return !(std::strcmp(value, "") == 0 || std::strcmp(value, "0") == 0 ||
             std::strcmp(value, "false") == 0 || std::strcmp(value, "off") == 0);
}

} // namespace tp::arith::detail
