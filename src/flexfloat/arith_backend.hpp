// tp::arith — the unified arithmetic-backend seam of the FlexFloat layer.
//
// Every rounded FP operation in this repository (the flexfloat<E, M>
// template operators, FlexFloatDyn's runtime-format ops, and the
// sim::TpValue/TpArray hot loop) funnels through the entry points below, so
// the rounding semantics of the emulation live in exactly one place:
//
//     arith(op, a, b, fmt)   +, -, *, /, neg, abs, sqrt  (b ignored for unary)
//     fma(a, b, c, fmt)      fused multiply-add, single rounding
//     cast(value, fmt)       re-round an arbitrary binary64 to fmt
//
// Operands are binary64 values already exactly representable in `fmt` (the
// invariant every FlexFloat value maintains); results are returned the same
// way. Per format, one of two backends executes the operation:
//
//   * kEmulated — compute on binary64, re-round with detail::sanitize()
//     (the paper's Section III-A scheme, exact by innocuous double
//     rounding); fma takes the exact integer path (fma_exact.hpp).
//   * kNativeF64/F32/F16 — for formats that map onto hardware FP types
//     (binary64 <-> double, binary32 <-> float, binary16 <-> _Float16 where
//     the compiler AND hardware support it), the operands — exactly
//     representable in the format, so the narrowing conversion never rounds
//     — are converted to the hardware type and the operation is computed in
//     that type directly: the FPU's own rounding IS the target rounding, no
//     re-round step at all. fma uses the hardware fma/fmaf for f64/f32
//     (binary16 keeps the exact integer path: float fmaf re-rounded to half
//     would double-round). This is the soft<->native std::bit_cast
//     boundary-conversion idiom: the value's representation only changes at
//     the format boundary, the arithmetic itself runs on silicon.
//
// The two backends are BIT-IDENTICAL for every operation — including
// subnormal results, overflow to infinity, NaN canonicalization and
// round-to-nearest-even ties — which tests/test_arith_backend.cpp
// property-tests across the whole (e, m) lattice against the softfloat
// oracle. Backend choice is therefore purely a speed lever, and stats /
// trace recording (which lives in the callers) fires identically on both.
//
// Override knob, for differential testing: the emulated path stays
// selectable everywhere via
//   * env TP_FORCE_EMULATED=1  — whole process (read once at startup);
//   * set_force_emulated() / ScopedForceEmulated — current thread;
//   * sim::TpContext::Config::force_emulated — one context's instructions;
//   * tuning EvalEngine Options::force_emulated — every kernel the engine
//     runs (applied as a thread scope around trial + golden execution).
#pragma once

#include <limits>

#include "flexfloat/fma_exact.hpp"
#include "flexfloat/sanitize.hpp"
#include "flexfloat/stats.hpp"
#include "types/format.hpp"

namespace tp::arith {

namespace detail {

/// Cached truthiness of env TP_FORCE_EMULATED ("" / "0" / "false" / "off"
/// are false, anything else true). Read once, in arith_backend.cpp.
[[nodiscard]] bool read_env_force_emulated() noexcept;

// Process-wide env override (immutable after static init) and the
// per-thread programmatic override. The thread_local is constant-initialized
// so the hot path pays a plain TLS load, no init guard.
inline const bool g_env_force_emulated = read_env_force_emulated();
inline thread_local bool t_force_emulated = false;

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// The canonical quiet NaN every backend returns: positive sign, quiet bit
/// set, zero payload — the same value decode()/quantize() produce.
inline constexpr double kCanonicalNaN =
    std::numeric_limits<double>::quiet_NaN();

/// Out-of-line NaN producer for the native hot path. The call (cold,
/// never inlined) forces the compiler to keep the NaN check a real,
/// predicted-not-taken branch: written as a select it becomes
/// ucomisd + cmovp with an xmm->gpr->xmm round-trip ON the caller's
/// accumulation dependency chain, which measurably costs more latency
/// than the arithmetic being guarded.
[[gnu::cold, gnu::noinline]] inline double canonical_nan() noexcept {
    return kCanonicalNaN;
}

/// Smallest |x| that rounds to infinity in the narrow type under
/// round-to-nearest-even: the midpoint between the largest finite value and
/// the next power of two. Guarding on it keeps the double->narrow
/// conversion in range (out-of-range FP conversions are UB in C++ even
/// though the hardware would produce the right infinity).
template <typename T>
struct NativeTraits;
template <>
struct NativeTraits<float> {
    static constexpr double kOverflowBoundary = 0x1.ffffffp+127; // 2^128 - 2^103
};
#if TP_NATIVE_F16
template <>
struct NativeTraits<_Float16> {
    static constexpr double kOverflowBoundary = 0x1.ffep+15; // 65520
};
#endif

/// Re-rounds an ARBITRARY binary64 value to the narrow hardware type — the
/// native replacement for detail::sanitize() at the cast/construction
/// boundary. A direct double->T conversion is exactly one correct rounding;
/// the overflow guard keeps it in range because an out-of-range finite FP
/// conversion is UB in C++ (the boundary itself already rounds to infinity
/// under RNE, so >= bound maps to inf on both paths).
template <typename T>
[[nodiscard]] inline double round_native(double r) noexcept {
    if constexpr (__is_same(T, double)) {
        if (r != r) [[unlikely]] return canonical_nan();
        return r;
    } else {
        constexpr double bound = NativeTraits<T>::kOverflowBoundary;
        if (__builtin_fabs(r) < bound) [[likely]] {
            return static_cast<double>(static_cast<T>(r));
        }
        if (r != r) return kCanonicalNaN;
        return r > 0 ? kInf : -kInf; // finite overflow and inf alike
    }
}

// Operand/result conversions for the arithmetic hot path. Operands are
// exactly representable in the target format (the FlexFloat invariant), so
// these conversions never round and never hit the out-of-range UB — and
// binary16 can route through float, which with hardware F16C stays on
// conversion instructions (a direct double<->half conversion would take
// libgcc's software path).
template <typename T>
[[nodiscard]] inline T from_operand(double v) noexcept {
#if TP_NATIVE_F16
    if constexpr (__is_same(T, _Float16)) {
        return static_cast<_Float16>(static_cast<float>(v));
    } else
#endif
    {
        return static_cast<T>(v);
    }
}

template <typename T>
[[nodiscard]] inline double to_result(T v) noexcept {
#if TP_NATIVE_F16
    if constexpr (__is_same(T, _Float16)) {
        return static_cast<double>(static_cast<float>(v));
    } else
#endif
    {
        return static_cast<double>(v);
    }
}

template <typename T>
[[nodiscard]] inline T native_sqrt(T a) noexcept {
    if constexpr (__is_same(T, double)) {
        return __builtin_sqrt(a);
    } else if constexpr (__is_same(T, float)) {
        return __builtin_sqrtf(a);
    } else {
        // binary16: the correctly rounded float sqrt re-rounded to half is
        // the correctly rounded half sqrt (innocuous double rounding:
        // float's 24 significand bits >= 2 * 11 + 2).
        return static_cast<T>(__builtin_sqrtf(static_cast<float>(a)));
    }
}

/// One operation on the hardware type itself: convert the (exactly
/// representable) operands, compute in T — which IS the target's rounding,
/// no re-round step — and widen the result back. Overflow yields the
/// hardware infinity, subnormal results come from the FPU's gradual
/// underflow, and invalid operations are canonicalized to the emulated
/// path's +qNaN (hardware "indefinite" NaNs carry a sign the emulation
/// never produces). Neg/Abs are exact sign manipulations and skip the type
/// round-trip entirely.
template <typename T>
[[nodiscard]] inline double native_arith(FpOp op, double a, double b) noexcept {
    switch (op) {
    case FpOp::Neg: {
        const double r = -a;
        if (r != r) [[unlikely]] return canonical_nan();
        return r;
    }
    case FpOp::Abs: {
        const double r = __builtin_fabs(a);
        if (r != r) [[unlikely]] return canonical_nan();
        return r;
    }
    default: break;
    }
    const T ta = from_operand<T>(a);
    const T tb = from_operand<T>(b);
    T tr;
    switch (op) {
    case FpOp::Add: tr = ta + tb; break;
    case FpOp::Sub: tr = ta - tb; break;
    case FpOp::Mul: tr = ta * tb; break;
    case FpOp::Div: tr = ta / tb; break;
    case FpOp::Sqrt: tr = native_sqrt<T>(ta); break;
    default: tr = ta; break; // non-rounding ops never route here
    }
    const double r = to_result<T>(tr);
    if (r != r) [[unlikely]] return canonical_nan();
    return r;
}

} // namespace detail

/// True when every entry point must take the emulated path on this thread
/// (env TP_FORCE_EMULATED, or a programmatic thread override).
[[nodiscard]] inline bool force_emulated() noexcept {
    return detail::g_env_force_emulated | detail::t_force_emulated;
}

/// Sets this thread's backend override (sticky; prefer ScopedForceEmulated).
/// Clearing it does not undo the process-wide env override.
inline void set_force_emulated(bool on) noexcept {
    detail::t_force_emulated = on;
}

/// RAII thread-scope for the override — the differential-testing primitive:
///     tp::arith::ScopedForceEmulated scope;   // emulated until scope ends
class ScopedForceEmulated {
public:
    explicit ScopedForceEmulated(bool on = true) noexcept
        : previous_(detail::t_force_emulated) {
        detail::t_force_emulated = previous_ || on;
    }
    ~ScopedForceEmulated() { detail::t_force_emulated = previous_; }
    ScopedForceEmulated(const ScopedForceEmulated&) = delete;
    ScopedForceEmulated& operator=(const ScopedForceEmulated&) = delete;

private:
    bool previous_;
};

/// The backend an operation in `format` executes on right now: the format's
/// static classification (FpFormat::backend()) unless the override knob
/// forces the emulated path.
[[nodiscard]] inline BackendKind resolve(FpFormat format) noexcept {
    return force_emulated() ? BackendKind::kEmulated : format.backend();
}

/// Reference implementation: binary64 arithmetic + sanitize re-rounding.
/// Public so forced-emulated callers (and tests) can name it directly; the
/// fast entry points below fall back to it for every non-native format.
[[nodiscard]] inline double emulated(FpOp op, double a, double b,
                                     FpFormat format) noexcept {
    switch (op) {
    case FpOp::Add: return tp::detail::sanitize(a + b, format);
    case FpOp::Sub: return tp::detail::sanitize(a - b, format);
    case FpOp::Mul: return tp::detail::sanitize(a * b, format);
    case FpOp::Div: return tp::detail::sanitize(a / b, format);
    case FpOp::Neg: return tp::detail::sanitize(-a, format);
    case FpOp::Abs: return tp::detail::sanitize(__builtin_fabs(a), format);
    case FpOp::Sqrt: return tp::detail::sanitize(__builtin_sqrt(a), format);
    default: return tp::detail::sanitize(a, format);
    }
}

/// Reference fma: exact integer path, correctly rounded for every format.
[[nodiscard]] inline double emulated_fma(double a, double b, double c,
                                         FpFormat format) noexcept {
    return tp::detail::fma_exact(a, b, c, format);
}

/// Reference cast: re-round an arbitrary binary64 value to `format`.
[[nodiscard]] inline double emulated_cast(double value,
                                          FpFormat format) noexcept {
    return tp::detail::sanitize(value, format);
}

/// One rounded operation in `format`. `a` and `b` must already be exactly
/// representable in `format` (every FlexFloat value is); `b` is ignored for
/// the unary ops (Neg, Abs, Sqrt). Dispatches per resolve(format).
[[nodiscard]] inline double arith(FpOp op, double a, double b,
                                  FpFormat format) noexcept {
    switch (resolve(format)) {
    case BackendKind::kNativeF64: return detail::native_arith<double>(op, a, b);
    case BackendKind::kNativeF32: return detail::native_arith<float>(op, a, b);
#if TP_NATIVE_F16
    case BackendKind::kNativeF16:
        return detail::native_arith<_Float16>(op, a, b);
#endif
    default: return emulated(op, a, b, format);
    }
}

/// Fused multiply-add, single rounding. Hardware fma/fmaf serve the f64/f32
/// backends; binary16 keeps the exact integer path even when native — a
/// float fmaf result re-rounded to half would be double-rounded (the
/// 2p+2 envelope does not cover the 22-bit product + addend sum).
[[nodiscard]] inline double fma(double a, double b, double c,
                                FpFormat format) noexcept {
    switch (resolve(format)) {
    case BackendKind::kNativeF64: {
        const double r = __builtin_fma(a, b, c);
        if (r != r) [[unlikely]] return detail::canonical_nan();
        return r;
    }
    case BackendKind::kNativeF32: {
        const double r = static_cast<double>(__builtin_fmaf(
            static_cast<float>(a), static_cast<float>(b),
            static_cast<float>(c)));
        if (r != r) [[unlikely]] return detail::canonical_nan();
        return r;
    }
    default: return emulated_fma(a, b, c, format);
    }
}

/// Re-rounds an arbitrary binary64 value to `format` — the format-boundary
/// conversion (construction from a native double, FP<->FP casts).
[[nodiscard]] inline double cast(double value, FpFormat format) noexcept {
    switch (resolve(format)) {
    case BackendKind::kNativeF64: return detail::round_native<double>(value);
    case BackendKind::kNativeF32: return detail::round_native<float>(value);
#if TP_NATIVE_F16
    case BackendKind::kNativeF16: return detail::round_native<_Float16>(value);
#endif
    default: return emulated_cast(value, format);
    }
}

} // namespace tp::arith
