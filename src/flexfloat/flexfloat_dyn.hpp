// FlexFloatDyn — the runtime-format twin of flexfloat<E, M>.
//
// The template form fixes (e, m) at compile time, which matches the final
// deployment step of the programming flow. The precision-tuning loop,
// however, re-runs a program hundreds of times with *different* per-variable
// formats; recompiling for every trial (what the paper's "FlexFloat wrapper"
// does with template re-instantiation) would dominate tuning time. This
// class carries its FpFormat as a value, so the tuner and the virtual
// platform can change formats between runs without recompilation, at the
// cost of one descriptor per value.
//
// Semantics are identical to flexfloat<E, M>: every operation routes
// through the shared arithmetic backend (flexfloat/arith_backend.hpp),
// which rounds the result to the value's format — natively for
// hardware-mappable formats, via binary64 + sanitize otherwise; operands of
// an arithmetic operation must share one format (asserted), and casts are
// explicit via cast_to().
#pragma once

#include <cassert>
#include <cstdint>
#include <iosfwd>

#include "flexfloat/arith_backend.hpp"
#include "flexfloat/stats.hpp"
#include "types/format.hpp"

namespace tp {

namespace sim {
class TpValue;
class TpArray; // routed through the backend seam too; see sim/context.hpp
class TpContext;
}

class FlexFloatDyn {
public:
    constexpr FlexFloatDyn() noexcept = default;

    FlexFloatDyn(double value, FpFormat format) noexcept
        : value_(arith::cast(value, format)), format_(format) {}

    [[nodiscard]] double value() const noexcept { return value_; }
    [[nodiscard]] FpFormat format() const noexcept { return format_; }
    [[nodiscard]] std::uint64_t bits() const noexcept;
    [[nodiscard]] static FlexFloatDyn from_bits(std::uint64_t bits,
                                                FpFormat format) noexcept;

    /// Explicit format conversion; recorded as a cast instruction.
    [[nodiscard]] FlexFloatDyn cast_to(FpFormat target) const noexcept;

    friend FlexFloatDyn operator+(const FlexFloatDyn& a, const FlexFloatDyn& b) noexcept {
        return binary_op(a, b, FpOp::Add);
    }
    friend FlexFloatDyn operator-(const FlexFloatDyn& a, const FlexFloatDyn& b) noexcept {
        return binary_op(a, b, FpOp::Sub);
    }
    friend FlexFloatDyn operator*(const FlexFloatDyn& a, const FlexFloatDyn& b) noexcept {
        return binary_op(a, b, FpOp::Mul);
    }
    friend FlexFloatDyn operator/(const FlexFloatDyn& a, const FlexFloatDyn& b) noexcept {
        return binary_op(a, b, FpOp::Div);
    }
    friend FlexFloatDyn operator-(const FlexFloatDyn& a) noexcept {
        record(a.format_, FpOp::Neg);
        return from_rounded(arith::arith(FpOp::Neg, a.value_, a.value_, a.format_),
                            a.format_);
    }

    FlexFloatDyn& operator+=(const FlexFloatDyn& rhs) noexcept { return *this = *this + rhs; }
    FlexFloatDyn& operator-=(const FlexFloatDyn& rhs) noexcept { return *this = *this - rhs; }
    FlexFloatDyn& operator*=(const FlexFloatDyn& rhs) noexcept { return *this = *this * rhs; }
    FlexFloatDyn& operator/=(const FlexFloatDyn& rhs) noexcept { return *this = *this / rhs; }

    friend bool operator==(const FlexFloatDyn& a, const FlexFloatDyn& b) noexcept {
        record_cmp(a, b);
        return a.value_ == b.value_;
    }
    friend bool operator!=(const FlexFloatDyn& a, const FlexFloatDyn& b) noexcept {
        record_cmp(a, b);
        return a.value_ != b.value_;
    }
    friend bool operator<(const FlexFloatDyn& a, const FlexFloatDyn& b) noexcept {
        record_cmp(a, b);
        return a.value_ < b.value_;
    }
    friend bool operator<=(const FlexFloatDyn& a, const FlexFloatDyn& b) noexcept {
        record_cmp(a, b);
        return a.value_ <= b.value_;
    }
    friend bool operator>(const FlexFloatDyn& a, const FlexFloatDyn& b) noexcept {
        record_cmp(a, b);
        return a.value_ > b.value_;
    }
    friend bool operator>=(const FlexFloatDyn& a, const FlexFloatDyn& b) noexcept {
        record_cmp(a, b);
        return a.value_ >= b.value_;
    }

    friend FlexFloatDyn sqrt(const FlexFloatDyn& a) noexcept;
    friend FlexFloatDyn abs(const FlexFloatDyn& a) noexcept;
    /// Fused multiply-add with a single rounding: a * b + c.
    friend FlexFloatDyn fma(const FlexFloatDyn& a, const FlexFloatDyn& b,
                            const FlexFloatDyn& c) noexcept;

private:
    friend class sim::TpValue;
    friend class sim::TpArray;
    friend class sim::TpContext;

    /// Adopts `value` WITHOUT rounding it to `format` — the value may not
    /// be representable. Only the tracing context's binary64 shadow mode
    /// (sim/context.hpp Config::binary64_shadow) uses this: there the
    /// format is a pure dataflow tag and every value is computed in plain
    /// binary64, so the from_rounded() invariant intentionally fails.
    static FlexFloatDyn from_raw(double value, FpFormat format) noexcept {
        FlexFloatDyn result;
        result.value_ = value;
        result.format_ = format;
        return result;
    }

    /// Adopts a value the arithmetic backend already rounded to `format` —
    /// skips the construction-time re-round. Callers promise the invariant.
    static FlexFloatDyn from_rounded(double value, FpFormat format) noexcept {
        assert(value != value || value == detail::sanitize(value, format));
        FlexFloatDyn result;
        result.value_ = value;
        result.format_ = format;
        return result;
    }

    static FlexFloatDyn binary_op(const FlexFloatDyn& a, const FlexFloatDyn& b,
                                  FpOp op) noexcept {
        assert(a.format_ == b.format_ &&
               "mixed-format arithmetic requires an explicit cast");
        record(a.format_, op);
        return from_rounded(arith::arith(op, a.value_, b.value_, a.format_),
                            a.format_);
    }
    static void record(FpFormat format, FpOp op) noexcept {
        if (stats_enabled()) thread_stats().record_op(format, op);
    }
    static void record_cmp(const FlexFloatDyn& a, const FlexFloatDyn& b) noexcept {
        assert(a.format_ == b.format_);
        (void)b;
        record(a.format_, FpOp::Cmp);
    }

    double value_ = 0.0;
    FpFormat format_ = kBinary32;
};

std::ostream& operator<<(std::ostream& os, const FlexFloatDyn& x);

} // namespace tp
