#include "flexfloat/fma_exact.hpp"

#include "softfloat/softfloat.hpp"
#include "types/encoding.hpp"

namespace tp::detail {

double fma_exact(double a, double b, double c, FpFormat format) noexcept {
    const std::uint64_t result = softfloat::fma(
        encode(a, format), encode(b, format), encode(c, format), format);
    return decode(result, format);
}

} // namespace tp::detail
