#include "flexfloat/flexfloat_dyn.hpp"

#include <ostream>

#include "flexfloat/arith_backend.hpp"
#include "types/encoding.hpp"

namespace tp {

std::uint64_t FlexFloatDyn::bits() const noexcept { return encode(value_, format_); }

FlexFloatDyn FlexFloatDyn::from_bits(std::uint64_t bits, FpFormat format) noexcept {
    FlexFloatDyn result;
    result.value_ = decode(bits & bit_mask(format), format);
    result.format_ = format;
    return result;
}

FlexFloatDyn FlexFloatDyn::cast_to(FpFormat target) const noexcept {
    if (stats_enabled()) thread_stats().record_cast(format_, target);
    return from_rounded(arith::cast(value_, target), target);
}

FlexFloatDyn sqrt(const FlexFloatDyn& a) noexcept {
    FlexFloatDyn::record(a.format_, FpOp::Sqrt);
    return FlexFloatDyn::from_rounded(
        arith::arith(FpOp::Sqrt, a.value_, a.value_, a.format_), a.format_);
}

FlexFloatDyn abs(const FlexFloatDyn& a) noexcept {
    FlexFloatDyn::record(a.format_, FpOp::Abs);
    return FlexFloatDyn::from_rounded(
        arith::arith(FpOp::Abs, a.value_, a.value_, a.format_), a.format_);
}

FlexFloatDyn fma(const FlexFloatDyn& a, const FlexFloatDyn& b,
                 const FlexFloatDyn& c) noexcept {
    assert(a.format() == b.format() && b.format() == c.format() &&
           "mixed-format fma requires explicit casts");
    FlexFloatDyn::record(a.format_, FpOp::Fma);
    return FlexFloatDyn::from_rounded(
        arith::fma(a.value_, b.value_, c.value_, a.format_), a.format_);
}

std::ostream& operator<<(std::ostream& os, const FlexFloatDyn& x) {
    return os << x.value();
}

} // namespace tp
