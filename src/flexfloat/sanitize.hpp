// The FlexFloat "sanitizing" step: arithmetic is performed on binary64 and
// the result is re-rounded to the (e, m) target so that the stored value is
// exactly what a dedicated hardware unit of that format would produce
// (paper, Section III-A).
//
// The fast path below rounds the binary64 mantissa in-place with the
// carry-propagating integer trick and falls back to the exact frexp-based
// quantize() for specials (NaN/Inf), zeros, and values that land in the
// target's subnormal range. Single rounding throughout: the fallback
// re-rounds the *original* value, never the fast-path intermediate.
//
// Bit-exactness of the overall compute-in-double-then-round scheme relies on
// innocuous double rounding, which holds whenever 53 >= 2 * (m + 1) + 2;
// FpFormat::exact_via_double() exposes the check and the flexfloat<E, M>
// template static_asserts it.
#pragma once

#include <bit>
#include <cstdint>

#include "types/encoding.hpp"
#include "types/format.hpp"

namespace tp::detail {

[[nodiscard]] inline double sanitize(double value, FpFormat format) noexcept {
    const auto bits = std::bit_cast<std::uint64_t>(value);
    const int exp_field = static_cast<int>((bits >> 52) & 0x7ff);
    if (exp_field == 0x7ff || exp_field == 0) {
        // NaN, Inf, zero or binary64-subnormal input: take the exact path.
        return quantize(value, format);
    }

    const int m = format.mant_bits;
    std::uint64_t rounded = bits;
    if (m < 52) {
        const int drop = 52 - m;
        const std::uint64_t lsb = 1ULL << drop;
        const std::uint64_t half = lsb >> 1;
        const std::uint64_t odd = (bits >> drop) & 1;
        // Round-to-nearest-even: adding (half - 1 + odd) rounds up exactly
        // when the dropped fraction exceeds half, or equals half with an odd
        // kept mantissa. A mantissa carry propagates into the exponent field,
        // which is the correct behaviour.
        rounded = (bits + (half - 1 + odd)) & ~(lsb - 1);
    }

    const int e_unb = static_cast<int>((rounded >> 52) & 0x7ff) - 1023;
    if (e_unb > format.max_exp()) {
        // Overflow in the target format: round-to-nearest maps to infinity.
        const std::uint64_t sign = bits & (1ULL << 63);
        return std::bit_cast<double>(sign | (0x7ffULL << 52));
    }
    if (e_unb < format.min_exp()) {
        // Subnormal in the target: re-round the original value exactly.
        return quantize(value, format);
    }
    return std::bit_cast<double>(rounded);
}

} // namespace tp::detail
