// Operation and cast statistics for FlexFloat programs.
//
// This is step 4 of the paper's transprecision programming flow (Fig. 2):
// once variables are mapped to FP types, the library reports how many
// operations and casts each instantiated type performs. Program sections
// that are vectorizable are tagged manually in the source (the paper does
// the same, since FlexFloat does not auto-vectorize); the registry keeps a
// distinct count for vectorial operations and casts.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <utility>

#include "types/format.hpp"

namespace tp {

/// Arithmetic/auxiliary FP operations tracked per format.
enum class FpOp : std::uint8_t {
    Add = 0,
    Sub,
    Mul,
    Fma, // fused multiply-add (single rounding)
    Div,
    Sqrt,
    Neg,
    Abs,
    Cmp,
    FromInt,
    ToInt,
};
inline constexpr std::size_t kFpOpCount = 11;

[[nodiscard]] std::string_view name_of(FpOp op) noexcept;

/// True while at least one VectorRegionGuard is alive on this thread.
[[nodiscard]] bool in_vector_region() noexcept;

namespace detail {
/// Mirror of thread_stats().enabled(), maintained by
/// StatsRegistry::set_enabled. Constant-initialized, so the hot-path check
/// below compiles to one TLS load and a branch — no function call, no TLS
/// init guard on the per-operation fast path.
inline thread_local bool t_stats_enabled = false;
} // namespace detail

/// Whether the calling thread's registry is currently collecting — THE
/// per-operation hot-path check. Exactly equivalent to
/// thread_stats().enabled(), but cheap enough for the arithmetic fast path.
[[nodiscard]] inline bool stats_enabled() noexcept {
    return detail::t_stats_enabled;
}

/// RAII tag for a manually-identified vectorizable program section.
/// Nesting is allowed; the section ends when the outermost guard dies.
class VectorRegionGuard {
public:
    VectorRegionGuard() noexcept;
    ~VectorRegionGuard();
    VectorRegionGuard(const VectorRegionGuard&) = delete;
    VectorRegionGuard& operator=(const VectorRegionGuard&) = delete;
};

/// Per-format operation counters, split scalar/vectorial.
struct OpCounts {
    std::array<std::uint64_t, kFpOpCount> scalar{};
    std::array<std::uint64_t, kFpOpCount> vectorial{};

    [[nodiscard]] std::uint64_t total(FpOp op) const noexcept {
        const auto i = static_cast<std::size_t>(op);
        return scalar[i] + vectorial[i];
    }
    /// Add/Sub/Mul/Div/Sqrt — the operations the paper's Fig. 5 counts.
    [[nodiscard]] std::uint64_t arithmetic_scalar() const noexcept;
    [[nodiscard]] std::uint64_t arithmetic_vectorial() const noexcept;
    [[nodiscard]] std::uint64_t arithmetic_total() const noexcept {
        return arithmetic_scalar() + arithmetic_vectorial();
    }
};

/// Collects FP operation and cast statistics. One instance per thread
/// (thread_stats()) backs both the flexfloat<E,M> template and
/// FlexFloatDyn; it is disabled by default so that un-instrumented code
/// pays only a branch. Thread confinement means concurrent tuning workers
/// (each owning a private TpContext and app clone) never share counter
/// state, so instrumented and parallel code can coexist without locks.
class StatsRegistry {
public:
    /// Also updates the stats_enabled() mirror when `this` is the calling
    /// thread's registry (defined out of line for that check).
    void set_enabled(bool enabled) noexcept;
    [[nodiscard]] bool enabled() const noexcept { return enabled_; }

    void reset() noexcept;

    void record_op(FpFormat format, FpOp op) noexcept;
    void record_cast(FpFormat from, FpFormat to) noexcept;

    [[nodiscard]] const std::map<FpFormat, OpCounts>& ops() const noexcept {
        return ops_;
    }
    /// Cast counts keyed by (from, to); index 0 is scalar, 1 vectorial.
    using CastKey = std::pair<FpFormat, FpFormat>;
    [[nodiscard]] const std::map<CastKey, std::array<std::uint64_t, 2>>& casts()
        const noexcept {
        return casts_;
    }

    [[nodiscard]] OpCounts counts_for(FpFormat format) const noexcept;
    [[nodiscard]] std::uint64_t total_arithmetic() const noexcept;
    [[nodiscard]] std::uint64_t total_casts() const noexcept;

    void print_report(std::ostream& os) const;

private:
    bool enabled_ = false;
    std::map<FpFormat, OpCounts> ops_;
    std::map<CastKey, std::array<std::uint64_t, 2>> casts_;
};

/// The calling thread's registry, used by default by all FlexFloat values
/// created on that thread.
[[nodiscard]] StatsRegistry& thread_stats() noexcept;

} // namespace tp
