#include "flexfloat/stats.hpp"

#include <ostream>

namespace tp {
namespace {
thread_local int g_vector_region_depth = 0;
} // namespace

std::string_view name_of(FpOp op) noexcept {
    switch (op) {
    case FpOp::Add: return "add";
    case FpOp::Sub: return "sub";
    case FpOp::Mul: return "mul";
    case FpOp::Fma: return "fma";
    case FpOp::Div: return "div";
    case FpOp::Sqrt: return "sqrt";
    case FpOp::Neg: return "neg";
    case FpOp::Abs: return "abs";
    case FpOp::Cmp: return "cmp";
    case FpOp::FromInt: return "fromint";
    case FpOp::ToInt: return "toint";
    }
    return "unknown";
}

bool in_vector_region() noexcept { return g_vector_region_depth > 0; }

VectorRegionGuard::VectorRegionGuard() noexcept { ++g_vector_region_depth; }
VectorRegionGuard::~VectorRegionGuard() { --g_vector_region_depth; }

std::uint64_t OpCounts::arithmetic_scalar() const noexcept {
    std::uint64_t total = 0;
    for (FpOp op : {FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Fma, FpOp::Div,
                    FpOp::Sqrt}) {
        total += scalar[static_cast<std::size_t>(op)];
    }
    return total;
}

std::uint64_t OpCounts::arithmetic_vectorial() const noexcept {
    std::uint64_t total = 0;
    for (FpOp op : {FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Fma, FpOp::Div,
                    FpOp::Sqrt}) {
        total += vectorial[static_cast<std::size_t>(op)];
    }
    return total;
}

void StatsRegistry::reset() noexcept {
    ops_.clear();
    casts_.clear();
}

void StatsRegistry::record_op(FpFormat format, FpOp op) noexcept {
    auto& counts = ops_[format];
    auto& bucket = in_vector_region() ? counts.vectorial : counts.scalar;
    ++bucket[static_cast<std::size_t>(op)];
}

void StatsRegistry::record_cast(FpFormat from, FpFormat to) noexcept {
    auto& slots = casts_[{from, to}];
    ++slots[in_vector_region() ? 1 : 0];
}

OpCounts StatsRegistry::counts_for(FpFormat format) const noexcept {
    const auto it = ops_.find(format);
    return it == ops_.end() ? OpCounts{} : it->second;
}

std::uint64_t StatsRegistry::total_arithmetic() const noexcept {
    std::uint64_t total = 0;
    for (const auto& [fmt, counts] : ops_) total += counts.arithmetic_total();
    return total;
}

std::uint64_t StatsRegistry::total_casts() const noexcept {
    std::uint64_t total = 0;
    for (const auto& [key, slots] : casts_) total += slots[0] + slots[1];
    return total;
}

void StatsRegistry::print_report(std::ostream& os) const {
    os << "FlexFloat operation report\n";
    for (const auto& [fmt, counts] : ops_) {
        os << "  format (e=" << int{fmt.exp_bits} << ", m=" << int{fmt.mant_bits}
           << "):";
        for (std::size_t i = 0; i < kFpOpCount; ++i) {
            const auto op = static_cast<FpOp>(i);
            const std::uint64_t s = counts.scalar[i];
            const std::uint64_t v = counts.vectorial[i];
            if (s + v == 0) continue;
            os << ' ' << name_of(op) << "=" << s;
            if (v != 0) os << "(+" << v << "v)";
        }
        os << '\n';
    }
    for (const auto& [key, slots] : casts_) {
        os << "  cast (e=" << int{key.first.exp_bits} << ",m="
           << int{key.first.mant_bits} << ") -> (e=" << int{key.second.exp_bits}
           << ",m=" << int{key.second.mant_bits} << "): " << slots[0];
        if (slots[1] != 0) os << " (+" << slots[1] << "v)";
        os << '\n';
    }
}

void StatsRegistry::set_enabled(bool enabled) noexcept {
    enabled_ = enabled;
    // Keep the hot-path mirror in sync — but only for the calling thread's
    // registry; toggling a detached StatsRegistry instance must not change
    // what this thread's FlexFloat operations record into.
    if (this == &thread_stats()) detail::t_stats_enabled = enabled;
}

StatsRegistry& thread_stats() noexcept {
    thread_local StatsRegistry registry;
    return registry;
}

} // namespace tp
