// flexfloat<E, M> — the paper's core contribution: a template class that
// emulates an arbitrary floating-point format with E exponent bits and M
// stored mantissa bits, bit-exactly, while computing on the native binary64
// unit (Section III-A).
//
// Usage mirrors native FP types thanks to operator overloading:
//
//     tp::flexfloat<5, 10> a = 1.5, b = 0.25;   // IEEE binary16
//     auto c = a * b + a;                        // rounded like hardware
//     auto d = tp::flexfloat_cast<8, 7>(c);      // explicit cast only
//
// Deliberate restrictions, as in the paper:
//   * distinct instantiations are distinct types and there is no implicit
//     conversion between them — mixed-format arithmetic is a compile error,
//     giving the programmer fine-grained control over intermediate formats;
//   * conversion to native FP types is explicit (`static_cast<double>(x)`);
//   * construction *from* native FP types is implicit, so literals work.
//
// Arithmetic-backend seam: every rounded operation below delegates to
// tp::arith (flexfloat/arith_backend.hpp) — hardware-mappable formats
// (binary64/binary32/binary16) execute natively with a conversion at the
// format boundary, everything else takes the emulated sanitize path, and
// the two are bit-identical by contract. Stats recording stays here, so it
// fires the same on either backend.
#pragma once

#include <ostream>

#include "flexfloat/arith_backend.hpp"
#include "flexfloat/stats.hpp"
#include "types/encoding.hpp"
#include "types/format.hpp"

namespace tp {

template <int E, int M>
class flexfloat {
    static_assert(FpFormat{E, M}.valid(),
                  "flexfloat supports 1 <= E <= 11 and 1 <= M <= 52");
    static_assert(FpFormat{E, M}.exact_via_double() || M == 52,
                  "formats this wide cannot be emulated bit-exactly through "
                  "binary64 arithmetic (innocuous double rounding needs "
                  "2*(M+1)+2 <= 53); use the softfloat backend instead");

public:
    /// Format descriptor of this instantiation.
    [[nodiscard]] static constexpr FpFormat format() noexcept {
        return FpFormat{E, M};
    }

    constexpr flexfloat() noexcept = default;

    // Implicit construction from the standard FP types, so FP literals keep
    // their usual infix ergonomics (paper: "constructors with implicit
    // semantics are provided for standard FP types").
    flexfloat(double value) noexcept : value_(arith::cast(value, format())) {}
    flexfloat(float value) noexcept : flexfloat(static_cast<double>(value)) {}
    flexfloat(long double value) noexcept : flexfloat(static_cast<double>(value)) {}
    // Integer literals would otherwise be ambiguous between the three FP
    // constructors.
    flexfloat(int value) noexcept : flexfloat(static_cast<double>(value)) {}
    flexfloat(long long value) noexcept : flexfloat(static_cast<double>(value)) {}

    /// Explicit cast between instantiations; counted in the statistics
    /// registry because on the transprecision FPU it is a real instruction.
    template <int E2, int M2>
    explicit flexfloat(const flexfloat<E2, M2>& other) noexcept
        : value_(arith::cast(static_cast<double>(other), format())) {
        if (stats_enabled()) {
            thread_stats().record_cast(FpFormat{E2, M2}, format());
        }
    }

    /// Explicit conversion to native types (interfacing with code bound to
    /// standard formats, e.g. external library calls).
    explicit operator double() const noexcept { return value_; }
    explicit operator float() const noexcept { return static_cast<float>(value_); }

    /// Packed (sign | exponent | mantissa) bit pattern.
    [[nodiscard]] std::uint64_t bits() const noexcept {
        return encode(value_, format());
    }
    [[nodiscard]] static flexfloat from_bits(std::uint64_t bits) noexcept {
        flexfloat result;
        result.value_ = decode(bits & bit_mask(format()), format());
        return result;
    }

    friend flexfloat operator+(const flexfloat& a, const flexfloat& b) noexcept {
        return apply(FpOp::Add, a, b);
    }
    friend flexfloat operator-(const flexfloat& a, const flexfloat& b) noexcept {
        return apply(FpOp::Sub, a, b);
    }
    friend flexfloat operator*(const flexfloat& a, const flexfloat& b) noexcept {
        return apply(FpOp::Mul, a, b);
    }
    friend flexfloat operator/(const flexfloat& a, const flexfloat& b) noexcept {
        return apply(FpOp::Div, a, b);
    }
    friend flexfloat operator-(const flexfloat& a) noexcept {
        return apply(FpOp::Neg, a, a);
    }

    flexfloat& operator+=(const flexfloat& rhs) noexcept { return *this = *this + rhs; }
    flexfloat& operator-=(const flexfloat& rhs) noexcept { return *this = *this - rhs; }
    flexfloat& operator*=(const flexfloat& rhs) noexcept { return *this = *this * rhs; }
    flexfloat& operator/=(const flexfloat& rhs) noexcept { return *this = *this / rhs; }

    // IEEE comparison semantics come from the underlying binary64 values
    // (NaN is unordered; -0 == +0).
    friend bool operator==(const flexfloat& a, const flexfloat& b) noexcept {
        record(FpOp::Cmp);
        return a.value_ == b.value_;
    }
    friend bool operator!=(const flexfloat& a, const flexfloat& b) noexcept {
        record(FpOp::Cmp);
        return a.value_ != b.value_;
    }
    friend bool operator<(const flexfloat& a, const flexfloat& b) noexcept {
        record(FpOp::Cmp);
        return a.value_ < b.value_;
    }
    friend bool operator<=(const flexfloat& a, const flexfloat& b) noexcept {
        record(FpOp::Cmp);
        return a.value_ <= b.value_;
    }
    friend bool operator>(const flexfloat& a, const flexfloat& b) noexcept {
        record(FpOp::Cmp);
        return a.value_ > b.value_;
    }
    friend bool operator>=(const flexfloat& a, const flexfloat& b) noexcept {
        record(FpOp::Cmp);
        return a.value_ >= b.value_;
    }

    friend flexfloat sqrt(const flexfloat& a) noexcept {
        return apply(FpOp::Sqrt, a, a);
    }
    /// Fused multiply-add with a single rounding: a * b + c. No binary64
    /// shortcut exists for an emulated fma (see fma_exact.hpp); hardware
    /// fma/fmaf serve the native binary64/binary32 backends.
    friend flexfloat fma(const flexfloat& a, const flexfloat& b,
                         const flexfloat& c) noexcept {
        record(FpOp::Fma);
        return from_rounded(arith::fma(a.value_, b.value_, c.value_, format()));
    }
    friend flexfloat abs(const flexfloat& a) noexcept {
        return apply(FpOp::Abs, a, a);
    }

private:
    static flexfloat apply(FpOp op, const flexfloat& a,
                           const flexfloat& b) noexcept {
        record(op);
        return from_rounded(arith::arith(op, a.value_, b.value_, format()));
    }
    /// Adopts a value the arithmetic backend already rounded to format().
    static flexfloat from_rounded(double rounded) noexcept {
        flexfloat result;
        result.value_ = rounded;
        return result;
    }
    static void record(FpOp op) noexcept {
        if (stats_enabled()) thread_stats().record_op(format(), op);
    }

    double value_ = 0.0;
};

/// Explicit cast helper, symmetric with the constructor form:
///     auto y = flexfloat_cast<8, 7>(x);
template <int E2, int M2, int E1, int M1>
[[nodiscard]] flexfloat<E2, M2> flexfloat_cast(const flexfloat<E1, M1>& x) noexcept {
    return flexfloat<E2, M2>{x};
}

template <int E, int M>
std::ostream& operator<<(std::ostream& os, const flexfloat<E, M>& x) {
    return os << static_cast<double>(x);
}

// The four formats of the paper's extended type system (Fig. 1).
using binary8_t = flexfloat<5, 2>;
using binary16_t = flexfloat<5, 10>;
using binary16alt_t = flexfloat<8, 7>;
using binary32_t = flexfloat<8, 23>;

} // namespace tp
