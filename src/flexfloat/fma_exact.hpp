// Correctly rounded FMA for flexfloat.
//
// Unlike +, -, *, / and sqrt, the fused multiply-add CANNOT be emulated by
// computing on binary64 and re-rounding, for any narrow target: the exact
// product a*b (2p bits) can land exactly on a rounding halfway point of the
// target format while the addend c — arbitrarily far below — breaks the
// tie. Rounding to nearest at 53 bits first destroys that information, so
// the innocuous-double-rounding envelope of the other operations does not
// carry over (a round-to-odd intermediate would work, but manipulating the
// FP environment per operation costs more than the integer path).
// flexfloat therefore delegates every fma to the softfloat substrate.
#pragma once

#include "types/format.hpp"

namespace tp::detail {

/// Correctly rounded a * b + c in `format`, for operands already
/// representable in `format`. Implemented on the softfloat substrate.
[[nodiscard]] double fma_exact(double a, double b, double c,
                               FpFormat format) noexcept;

} // namespace tp::detail
