// Small numeric helpers shared by the tuning and benchmarking layers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tp::util {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Root-mean-square of a span; returns 0 for an empty span.
double rms(std::span<const double> xs);

/// Signal-to-quantization-noise ratio between a reference signal and a
/// degraded approximation, as a plain power ratio (not dB):
///     SQNR = sum(ref^2) / sum((ref - approx)^2)
/// Returns +inf when the noise power is zero. The sizes must match.
double sqnr(std::span<const double> reference, std::span<const double> approx);

/// Relative root-mean-square error: rms(ref - approx) / rms(ref).
/// This is the quantity the precision requirement epsilon constrains
/// (epsilon = 1e-1 means the noise RMS may be at most 10% of signal RMS,
/// i.e. SQNR >= 1/epsilon^2). Returns +inf if the reference is all zero
/// while the approximation is not, and 0 if both are all zero.
double relative_rms_error(std::span<const double> reference,
                          std::span<const double> approx);

/// Geometric mean; returns 0 for an empty span. All inputs must be > 0.
double geometric_mean(std::span<const double> xs);

/// Welford-style running mean/variance accumulator.
class RunningStats {
public:
    void add(double x) noexcept;
    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace tp::util
