#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace tp::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
    row.resize(header_.size());
    rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string Table::percent(double ratio, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << (ratio * 100.0) << '%';
    return os.str();
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }

    auto print_row = [&](const std::vector<std::string>& row) {
        os << '|';
        for (std::size_t c = 0; c < header_.size(); ++c) {
            const std::string& cell = c < row.size() ? row[c] : std::string{};
            os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << cell
               << " |";
        }
        os << '\n';
    };

    auto print_rule = [&] {
        os << '+';
        for (std::size_t c = 0; c < header_.size(); ++c) {
            os << std::string(width[c] + 2, '-') << '+';
        }
        os << '\n';
    };

    print_rule();
    print_row(header_);
    print_rule();
    for (const auto& row : rows_) print_row(row);
    print_rule();
}

} // namespace tp::util
