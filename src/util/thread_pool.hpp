// Fixed-size thread pool for the parallel precision-tuning engine.
//
// The tuning search dispatches independent trial evaluations (per-signal
// precision probes, per-input-set quality checks, candidate-format cost
// probes) onto a pool of workers. Each submitted task owns all the state it
// touches — a private TpContext plus an apps::App clone — so the pool needs
// no synchronization beyond its own queue. Determinism is the caller's
// contract: tasks are pure functions of their inputs, and callers reduce
// results by task index, never by completion order (see
// tuning/search.hpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace tp::util {

class ThreadPool {
public:
    /// Spawns `thread_count` workers (at least one). If the system runs
    /// out of threads mid-spawn, the ones already started are joined
    /// before the std::system_error propagates (a joinable std::thread
    /// destroyed during unwind would call std::terminate).
    explicit ThreadPool(unsigned thread_count) {
        if (thread_count == 0) thread_count = 1;
        workers_.reserve(thread_count);
        try {
            for (unsigned i = 0; i < thread_count; ++i) {
                workers_.emplace_back([this] { worker_loop(); });
            }
        } catch (...) {
            shutdown();
            throw;
        }
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Drains the queue: already-submitted tasks still run to completion.
    ~ThreadPool() { shutdown(); }

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Schedules `task` and returns a future for its result. Exceptions
    /// thrown by the task surface at future.get().
    template <typename F>
    [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F task) {
        using R = std::invoke_result_t<F>;
        auto packaged =
            std::make_shared<std::packaged_task<R()>>(std::move(task));
        std::future<R> future = packaged->get_future();
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            queue_.emplace([packaged] { (*packaged)(); });
        }
        cv_.notify_one();
        return future;
    }

private:
    void shutdown() {
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            stopping_ = true;
        }
        cv_.notify_all();
        for (std::thread& worker : workers_) worker.join();
        workers_.clear();
    }

    void worker_loop() {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock{mutex_};
                cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
                if (queue_.empty()) return; // stopping_ and drained
                task = std::move(queue_.front());
                queue_.pop();
            }
            task();
        }
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    std::queue<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
};

/// Runs fn(0) .. fn(count - 1) and returns the results indexed by input.
/// With a null pool the calls happen inline on the calling thread, in index
/// order — the serial reference path. With a pool every call becomes one
/// task; results are still collected by index, so the output (and any
/// exception) is independent of worker scheduling.
template <typename Fn>
auto indexed_map(ThreadPool* pool, std::size_t count, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
    using R = std::invoke_result_t<Fn, std::size_t>;
    std::vector<R> results;
    results.reserve(count);
    if (pool == nullptr) {
        for (std::size_t i = 0; i < count; ++i) results.push_back(fn(i));
        return results;
    }
    std::vector<std::future<R>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        futures.push_back(pool->submit([fn, i] { return fn(i); }));
    }
    // Every future is awaited even after a failure: queued tasks reference
    // caller-owned state, so rethrowing while siblings are still pending
    // would let them run during (or after) the caller's unwind.
    std::exception_ptr first_error;
    for (std::future<R>& future : futures) {
        try {
            if (first_error == nullptr) {
                results.push_back(future.get());
            } else {
                (void)future.get();
            }
        } catch (...) {
            if (first_error == nullptr) first_error = std::current_exception();
        }
    }
    if (first_error != nullptr) std::rethrow_exception(first_error);
    return results;
}

} // namespace tp::util
