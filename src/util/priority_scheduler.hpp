// PriorityScheduler — persistent workers over a priority task queue.
//
// The FIFO ThreadPool (thread_pool.hpp) serves the tuning engine's trial
// fan-outs, where every queued task must run and relative order is
// irrelevant. The TuningService's admission queue needs a different
// discipline: tasks carry a priority, the next free worker always takes
// the most urgent admitted task, and ties break by admission order so
// equal-priority tasks stay FIFO — a small interactive request submitted
// behind twenty queued epsilon sweeps overtakes all of them.
//
// Cancellation and deadlines are deliberately NOT the scheduler's
// protocol: every admitted task is eventually popped and run, including
// during destruction. A caller that abandons queued work (TuningService's
// cancelled or expired tickets) makes the closure itself a cheap no-op
// tombstone; that keeps the queue free of back-references into caller
// state and makes the drain-on-destruction guarantee unconditional.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace tp::util {

class PriorityScheduler {
public:
    /// Spawns `thread_count` workers (at least one). Same mid-spawn
    /// failure handling as ThreadPool: already-started workers are joined
    /// before the std::system_error propagates.
    explicit PriorityScheduler(unsigned thread_count) {
        if (thread_count == 0) thread_count = 1;
        workers_.reserve(thread_count);
        try {
            for (unsigned i = 0; i < thread_count; ++i) {
                workers_.emplace_back([this] { worker_loop(); });
            }
        } catch (...) {
            shutdown();
            throw;
        }
    }

    PriorityScheduler(const PriorityScheduler&) = delete;
    PriorityScheduler& operator=(const PriorityScheduler&) = delete;

    /// Drains: every admitted task is popped and run (priority order)
    /// before the workers join. Tasks that must not do real work after
    /// their owner is gone are the tombstone protocol's problem, not ours.
    ~PriorityScheduler() { shutdown(); }

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Admits `task`. Higher `priority` runs first; within a priority,
    /// admission order. Admission order is the queue-lock acquisition
    /// order, so tasks submitted from one thread keep their program order.
    void submit(int priority, std::function<void()> task) {
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            queue_.emplace(Key{-priority, next_seq_++}, std::move(task));
        }
        cv_.notify_one();
    }

    /// Tasks admitted but not yet popped (tombstones included).
    [[nodiscard]] std::size_t pending() const {
        const std::lock_guard<std::mutex> lock{mutex_};
        return queue_.size();
    }

private:
    // Ascending map order == pop order: most urgent priority first
    // (negated), oldest admission within it.
    using Key = std::pair<int, std::uint64_t>;

    void shutdown() {
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            stopping_ = true;
        }
        cv_.notify_all();
        for (std::thread& worker : workers_) worker.join();
        workers_.clear();
    }

    void worker_loop() {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock{mutex_};
                cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
                if (queue_.empty()) return; // stopping_ and drained
                const auto it = queue_.begin();
                task = std::move(it->second);
                queue_.erase(it);
            }
            task();
        }
    }

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<Key, std::function<void()>> queue_;
    std::uint64_t next_seq_ = 0;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
};

} // namespace tp::util
