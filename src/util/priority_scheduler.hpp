// PriorityScheduler — persistent workers over an aging priority queue
// with admission control.
//
// The FIFO ThreadPool (thread_pool.hpp) serves the tuning engine's trial
// fan-outs, where every queued task must run and relative order is
// irrelevant. The TuningService's admission queue needs a different
// discipline: tasks carry a priority, the next free worker takes the most
// urgent admitted task, and ties break by admission order so
// equal-priority tasks stay FIFO — a small interactive request submitted
// behind twenty queued epsilon sweeps overtakes all of them.
//
// Strict priority starves: under a sustained stream of high-priority
// work, a low-priority task waits forever. With Options::aging_quantum
// set, a queued task's EFFECTIVE priority is
//
//     base_priority + floor(queue_time / aging_quantum)
//
// so every task eventually out-ranks fresh arrivals of any class and its
// wait is bounded by (priority gap x quantum) plus the backlog ahead of
// it at that rank. Ties on effective priority break by admission order,
// which is exactly what makes the bound work: an aged task that reaches a
// fresh arrival's rank is older, so it wins. A quantum of zero (the
// default) is strict priority, bit-for-bit the old pop order.
//
// Admission control: Options::per_class_cap bounds the LIVE queued tasks
// per base-priority class; submit() past the cap throws ClassFull (typed
// load-shedding — a bounded queue beats unbounded latency). submit()
// after stop() has begun throws Stopped: the drain guarantee below cannot
// be honoured for a task admitted while the workers are exiting, so
// admission fails loudly instead of silently dropping the task (the old
// scheduler enqueued it onto a queue no worker would ever drain).
//
// Abandoned work: a caller that gives up on a queued task (TuningService's
// cancelled tickets) calls discard(id) — the entry is erased on the spot,
// releasing the closure (and whatever request payload it captured)
// eagerly and keeping it out of every live count. Entries carrying an
// expiry (TaskOptions::expiry) are purged the same way the next time any
// thread takes the queue lock (submit or a worker between tasks) once the
// expiry passes, running their on_discard callback so the owner can
// observe the rejection without waiting for a pop; a worker that pops an
// entry just before its expiry passes still runs the closure, which is
// expected to re-check (TuningService's tickets do). pending() therefore
// counts real, runnable work only — there are no tombstones to inflate
// it.
//
// Drain guarantee: every admitted task is either popped and run (priority
// order, including during destruction) or explicitly discarded/expired by
// its owner — never silently dropped.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace tp::util {

class PriorityScheduler {
public:
    using Clock = std::chrono::steady_clock;

    /// Thrown by submit() once stop() has begun. The task was NOT
    /// admitted; nothing will run it.
    class Stopped final : public std::runtime_error {
    public:
        Stopped()
            : std::runtime_error("PriorityScheduler::submit after stop(): "
                                 "task refused, not admitted") {}
    };

    /// Thrown by submit() when the task's base-priority class already
    /// holds Options::per_class_cap live queued tasks. The task was NOT
    /// admitted.
    class ClassFull final : public std::runtime_error {
    public:
        ClassFull(int priority, std::size_t cap)
            : std::runtime_error(
                  "PriorityScheduler::submit: class " +
                  std::to_string(priority) + " is at its live-queue cap (" +
                  std::to_string(cap) + ")"),
              priority_(priority),
              cap_(cap) {}
        [[nodiscard]] int priority() const noexcept { return priority_; }
        [[nodiscard]] std::size_t cap() const noexcept { return cap_; }

    private:
        int priority_;
        std::size_t cap_;
    };

    struct Options {
        /// Workers to spawn (at least one).
        unsigned threads = 1;
        /// Live queued tasks allowed per base-priority class; 0 =
        /// unbounded. Running tasks don't count, discarded/expired
        /// entries don't count.
        std::size_t per_class_cap = 0;
        /// Anti-starvation aging quantum; zero disables aging (strict
        /// priority, the historical order).
        Clock::duration aging_quantum{};
        /// Injectable time source for aging and expiry — tests use a fake
        /// clock to make both fully deterministic. Must be monotone.
        std::function<Clock::time_point()> now = &Clock::now;
    };

    /// Per-task admission extras; default is a plain un-expiring task.
    struct TaskOptions {
        // No default member initializers: they would make the `= {}`
        // default argument of submit() ill-formed inside this class
        // (incomplete-class context); both members default-construct to
        // the intended empty state anyway.

        /// Once passed, the entry is purged from the queue (without
        /// running) at the next queue-lock acquisition instead of holding
        /// its closure until a worker pops it.
        std::optional<Clock::time_point> expiry;
        /// Runs exactly once, outside the scheduler lock, if the entry is
        /// removed without being popped (expiry purge or discard()). The
        /// thread that triggered the removal runs it.
        std::function<void()> on_discard;
    };

    /// Reserved "no task" id — submit() never returns it, so owners can
    /// use it as the not-yet-admitted sentinel next to a task-id field.
    static constexpr std::uint64_t kNoTask =
        std::numeric_limits<std::uint64_t>::max();

    /// Spawns Options::threads workers (at least one). Same mid-spawn
    /// failure handling as ThreadPool: already-started workers are joined
    /// before the std::system_error propagates.
    explicit PriorityScheduler(Options options) : options_(std::move(options)) {
        if (options_.threads == 0) options_.threads = 1;
        if (!options_.now) options_.now = &Clock::now;
        workers_.reserve(options_.threads);
        try {
            for (unsigned i = 0; i < options_.threads; ++i) {
                workers_.emplace_back([this] { worker_loop(); });
            }
        } catch (...) {
            stop();
            throw;
        }
    }

    explicit PriorityScheduler(unsigned thread_count)
        : PriorityScheduler(Options{.threads = thread_count}) {}

    PriorityScheduler(const PriorityScheduler&) = delete;
    PriorityScheduler& operator=(const PriorityScheduler&) = delete;

    /// Drains: every still-queued admitted task is popped and run
    /// (priority order) before the workers join. Tasks that must not do
    /// real work after their owner is gone are the owner's problem
    /// (discard them, or make the closure re-check — TuningService does
    /// both).
    ~PriorityScheduler() { stop(); }

    /// Idempotent shutdown: refuses new submissions (Stopped), lets the
    /// workers drain the queue, joins them. Safe to call from any thread
    /// that is not a worker; concurrent callers serialize and all return
    /// once the workers are joined.
    void stop() {
        const std::lock_guard<std::mutex> stop_lock{stop_mutex_};
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            stopping_ = true;
        }
        cv_.notify_all();
        for (std::thread& worker : workers_) worker.join();
        workers_.clear();
    }

    /// True once stop() (or destruction) has begun: submit() will throw
    /// Stopped. Exposed so tests can pin the submit-during-shutdown
    /// window deterministically.
    [[nodiscard]] bool stopping() const {
        const std::lock_guard<std::mutex> lock{mutex_};
        return stopping_;
    }

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Admits `task` and returns its id (for discard()). Higher effective
    /// priority runs first; within a class, admission order. Admission
    /// order is the queue-lock acquisition order, so tasks submitted from
    /// one thread keep their program order. Throws Stopped after stop(),
    /// ClassFull at the class cap — in both cases the task was not
    /// admitted and will never run.
    std::uint64_t submit(int priority, std::function<void()> task,
                         TaskOptions task_options = {}) {
        std::vector<std::function<void()>> discards;
        std::optional<ClassFull> rejected;
        std::uint64_t id = kNoTask;
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            if (stopping_) throw Stopped{};
            const Clock::time_point now = options_.now();
            purge_expired(now, discards);
            const auto live = live_per_class_.find(priority);
            if (options_.per_class_cap != 0 &&
                live != live_per_class_.end() &&
                live->second >= options_.per_class_cap) {
                rejected.emplace(priority, options_.per_class_cap);
            } else {
                id = next_seq_++;
                queue_.emplace(Key{-priority, id},
                               Entry{std::move(task), now, task_options.expiry,
                                     std::move(task_options.on_discard)});
                class_of_.emplace(id, priority);
                ++live_per_class_[priority];
                if (task_options.expiry.has_value()) {
                    expiries_.emplace(*task_options.expiry,
                                      Key{-priority, id});
                }
            }
        }
        // The purge's callbacks run even on the rejecting path — their
        // owners are waiting on them either way.
        for (const auto& on_discard : discards) on_discard();
        if (rejected.has_value()) throw *rejected;
        cv_.notify_one();
        return id;
    }

    /// Erases a still-queued entry: its closure (and captured payload) is
    /// released immediately, its on_discard runs on this thread, and it
    /// stops counting toward pending() and the class caps. Returns true
    /// exactly when the entry was still queued; false if it was already
    /// popped, discarded, or expired (or `id` is kNoTask).
    bool discard(std::uint64_t id) {
        std::function<void()> on_discard;
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            const auto class_it = class_of_.find(id);
            if (class_it == class_of_.end()) return false;
            const auto it = queue_.find(Key{-class_it->second, id});
            on_discard = std::move(it->second.on_discard);
            erase_entry(it);
            ++discarded_;
        }
        if (on_discard) on_discard();
        return true;
    }

    /// Live tasks admitted but not yet popped: discarded and expired
    /// entries are gone from the queue, so they never inflate this (the
    /// count admission decisions are built on).
    [[nodiscard]] std::size_t pending() const {
        const std::lock_guard<std::mutex> lock{mutex_};
        return queue_.size();
    }

    /// Live queued tasks in one base-priority class.
    [[nodiscard]] std::size_t pending(int priority) const {
        const std::lock_guard<std::mutex> lock{mutex_};
        const auto it = live_per_class_.find(priority);
        return it == live_per_class_.end() ? 0 : it->second;
    }

    /// Live queued tasks at base priority >= `priority` — under strict
    /// priority, the work guaranteed to run before a new submission at
    /// that priority (aging can only promote tasks from below).
    [[nodiscard]] std::size_t pending_at_least(int priority) const {
        const std::lock_guard<std::mutex> lock{mutex_};
        std::size_t count = 0;
        for (auto it = live_per_class_.lower_bound(priority);
             it != live_per_class_.end(); ++it) {
            count += it->second;
        }
        return count;
    }

    /// Entries removed without being popped (discard() + expiry purges)
    /// over the scheduler's lifetime.
    [[nodiscard]] std::uint64_t discarded() const {
        const std::lock_guard<std::mutex> lock{mutex_};
        return discarded_;
    }

private:
    // Ascending map order == strict pop order: most urgent base priority
    // first (negated), oldest admission within it. Aging never reorders
    // WITHIN a class (same base, and older entries age at least as much),
    // so each class's head is its best candidate and pop only compares
    // the handful of class heads.
    using Key = std::pair<int, std::uint64_t>;

    struct Entry {
        std::function<void()> task;
        Clock::time_point admitted_at;
        std::optional<Clock::time_point> expiry;
        std::function<void()> on_discard;
    };

    [[nodiscard]] long long age_steps(Clock::time_point now,
                                      Clock::time_point admitted) const {
        if (options_.aging_quantum <= Clock::duration::zero()) return 0;
        const Clock::duration waited = now - admitted;
        if (waited <= Clock::duration::zero()) return 0;
        return waited / options_.aging_quantum;
    }

    /// The queue entry a worker should take now: the class head with the
    /// highest effective priority, ties to the oldest admission. Requires
    /// the lock; the queue must be non-empty.
    [[nodiscard]] std::map<Key, Entry>::iterator best_entry(
        Clock::time_point now) {
        auto best = queue_.end();
        long long best_effective = 0;
        for (auto it = queue_.begin(); it != queue_.end();
             it = queue_.upper_bound(
                 Key{it->first.first,
                     std::numeric_limits<std::uint64_t>::max()})) {
            const long long effective =
                -it->first.first + age_steps(now, it->second.admitted_at);
            if (best == queue_.end() || effective > best_effective ||
                (effective == best_effective &&
                 it->first.second < best->first.second)) {
                best = it;
                best_effective = effective;
            }
        }
        return best;
    }

    /// Removes one entry and every index pointing at it. Requires the
    /// lock.
    void erase_entry(std::map<Key, Entry>::iterator it) {
        const Key key = it->first;
        const int priority = -key.first;
        if (it->second.expiry.has_value()) {
            const auto [begin, end] = expiries_.equal_range(*it->second.expiry);
            for (auto eit = begin; eit != end; ++eit) {
                if (eit->second == key) {
                    expiries_.erase(eit);
                    break;
                }
            }
        }
        const auto live = live_per_class_.find(priority);
        if (--live->second == 0) live_per_class_.erase(live);
        class_of_.erase(key.second);
        queue_.erase(it);
    }

    /// Erases every entry whose expiry has passed, collecting their
    /// on_discard callbacks for the caller to run outside the lock.
    /// Requires the lock.
    void purge_expired(Clock::time_point now,
                       std::vector<std::function<void()>>& discards) {
        while (!expiries_.empty() && expiries_.begin()->first <= now) {
            const auto it = queue_.find(expiries_.begin()->second);
            if (it->second.on_discard) {
                discards.push_back(std::move(it->second.on_discard));
            }
            erase_entry(it); // also erases the expiries_ head
            ++discarded_;
        }
    }

    void worker_loop() {
        for (;;) {
            std::function<void()> task;
            std::vector<std::function<void()>> discards;
            {
                std::unique_lock<std::mutex> lock{mutex_};
                cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
                const Clock::time_point now = options_.now();
                purge_expired(now, discards);
                if (queue_.empty()) {
                    if (stopping_ && discards.empty()) return;
                    // The purge may have emptied the queue: deliver the
                    // discard callbacks below, then come back and wait
                    // (or exit) with a clean slate.
                } else {
                    const auto it = best_entry(now);
                    task = std::move(it->second.task);
                    erase_entry(it);
                }
            }
            for (const auto& on_discard : discards) on_discard();
            if (task) task();
        }
    }

    Options options_;
    std::mutex stop_mutex_; // serializes stop(); never taken with mutex_ held
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<Key, Entry> queue_;
    std::map<std::uint64_t, int> class_of_;      // live entry id -> base prio
    std::multimap<Clock::time_point, Key> expiries_;
    std::map<int, std::size_t> live_per_class_;  // base prio -> live queued
    std::uint64_t next_seq_ = 0;
    std::uint64_t discarded_ = 0;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
};

} // namespace tp::util
