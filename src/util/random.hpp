// Deterministic pseudo-random number generation for workloads and tests.
//
// A self-contained xoshiro256** implementation is used instead of <random>
// engines so that workload generation is bit-reproducible across standard
// library implementations (the distributions in <random> are not portable).
#pragma once

#include <cstdint>
#include <limits>

namespace tp::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm).
/// Deterministic, splittable via `jump`-free reseeding, and fast enough to
/// generate multi-megabyte workloads during benchmarking.
class Xoshiro256 {
public:
    using result_type = std::uint64_t;

    explicit constexpr Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1) with 53 random bits.
    constexpr double uniform() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    constexpr double uniform(double lo, double hi) noexcept {
        return lo + (hi - lo) * uniform();
    }

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    constexpr std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>((*this)() % span);
    }

    /// Standard normal via Box-Muller (only one value per pair is used; the
    /// simplicity is worth more than the discarded half here).
    double normal() noexcept;

    double normal(double mean, double stddev) noexcept {
        return mean + stddev * normal();
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
};

inline double Xoshiro256::normal() noexcept {
    // Box-Muller transform; u is kept away from 0 so log() stays finite.
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0x1.0p-60);
    const double v = uniform();
    // 2*pi spelled out to avoid depending on non-standard M_PI in a header.
    constexpr double two_pi = 6.283185307179586476925286766559;
    // std::sqrt/std::cos are not constexpr-friendly on all toolchains; this
    // function is intentionally non-constexpr.
    return __builtin_sqrt(-2.0 * __builtin_log(u)) * __builtin_cos(two_pi * v);
}

} // namespace tp::util
