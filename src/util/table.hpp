// Minimal fixed-width ASCII table printer for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables or figures as
// rows of text; this helper keeps the formatting consistent across them.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tp::util {

class Table {
public:
    explicit Table(std::vector<std::string> header);

    /// Appends a data row; the row is padded/truncated to the header width.
    void add_row(std::vector<std::string> row);

    /// Convenience: formats a double with the given precision.
    static std::string num(double value, int precision = 3);
    /// Convenience: formats a ratio as a percentage string, e.g. "97.2%".
    static std::string percent(double ratio, int precision = 1);

    void print(std::ostream& os) const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace tp::util
