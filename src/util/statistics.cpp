#include "util/statistics.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace tp::util {

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double acc = 0.0;
    for (double x : xs) acc += x;
    return acc / static_cast<double>(xs.size());
}

double rms(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double acc = 0.0;
    for (double x : xs) acc += x * x;
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double sqnr(std::span<const double> reference, std::span<const double> approx) {
    assert(reference.size() == approx.size());
    double signal = 0.0;
    double noise = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        signal += reference[i] * reference[i];
        const double d = reference[i] - approx[i];
        noise += d * d;
    }
    if (noise == 0.0) return std::numeric_limits<double>::infinity();
    return signal / noise;
}

double relative_rms_error(std::span<const double> reference,
                          std::span<const double> approx) {
    assert(reference.size() == approx.size());
    double signal = 0.0;
    double noise = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        signal += reference[i] * reference[i];
        const double d = reference[i] - approx[i];
        // A NaN anywhere in the approximation means the configuration is
        // unusable: report infinite error rather than letting NaN poison
        // the comparison operators in the search loop.
        if (std::isnan(d)) return std::numeric_limits<double>::infinity();
        noise += d * d;
    }
    if (signal == 0.0) {
        return noise == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
    }
    return std::sqrt(noise / signal);
}

double geometric_mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double log_acc = 0.0;
    for (double x : xs) {
        assert(x > 0.0);
        log_acc += std::log(x);
    }
    return std::exp(log_acc / static_cast<double>(xs.size()));
}

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

} // namespace tp::util
