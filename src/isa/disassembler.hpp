// Textual disassembly of the transprecision ISA and full program listings.
//
// Mnemonics follow the PULP smallfloat convention: the format suffix is
// .s (binary32), .h (binary16), .ah (binary16alt) or .b (binary8), and
// vectorial instructions carry a "vf" prefix, e.g.
//
//   fadd.h   f3, f1, f2        # scalar binary16 addition
//   vfmul.b  f4, f2, f3        # 4-lane binary8 multiply
//   fcvt.ah.s f5, f1           # binary32 -> binary16alt conversion
//   fmadd.h  f6, f1, f2, f3    # fused multiply-add
#pragma once

#include <iosfwd>
#include <string>

#include "isa/encoding.hpp"
#include "sim/trace.hpp"

namespace tp::isa {

/// Disassembles one encoded word; unknown words render as ".word 0x...".
[[nodiscard]] std::string disassemble(std::uint32_t word);

/// Convenience: encode + disassemble a trace instruction.
[[nodiscard]] std::string disassemble(const sim::Instr& instr, int lanes = 1);

/// Writes the whole (possibly vectorized) program as an assembly listing:
/// one line per issued instruction — SIMD groups appear once, at their
/// issue point, annotated with their lane count. `max_lines` of 0 prints
/// everything.
void write_listing(const sim::TraceProgram& program, std::ostream& os,
                   std::size_t max_lines = 0);

} // namespace tp::isa
