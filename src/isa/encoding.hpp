// Machine-level encoding of the transprecision ISA extension.
//
// The platform the paper targets exposes the transprecision FPU through
// RISC-V instruction-set extensions (the PULP "smallfloat" family: Xf16,
// Xf16alt, Xf8 plus their vectorial Xfvec forms). This module encodes the
// simulator's typed instructions into 32-bit RISC-V-style words and back:
//
//   * scalar FP arithmetic uses the standard OP-FP major opcode with the
//     fmt field extended to the four transprecision formats
//     (00=S/binary32, 01=H/binary16, 10=AH/binary16alt, 11=B/binary8);
//   * fused multiply-add uses the MADD R4-type encoding;
//   * sub-word vectorial operations live in the CUSTOM-0 space with the
//     lane count in funct7;
//   * loads/stores/integer/branch instructions use their standard major
//     opcodes.
//
// Register fields are derived from the trace's SSA value ids (modulo the
// architectural register count) — this is a faithful *encoding* layer and
// a disassembly/visualization aid, not a register allocator.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/trace.hpp"
#include "types/format.hpp"

namespace tp::isa {

/// Major opcodes (RISC-V base + the custom space used by the extension).
enum class MajorOpcode : std::uint8_t {
    Load = 0b0000011,
    Store = 0b0100011,
    OpImm = 0b0010011,
    Branch = 0b1100011,
    OpFp = 0b1010011,
    Madd = 0b1000011,
    Custom0 = 0b0001011, // vectorial smallfloat operations
};

/// Two-bit fmt field of the extended OP-FP space.
enum class FmtCode : std::uint8_t {
    S = 0b00,  // binary32
    H = 0b01,  // binary16
    AH = 0b10, // binary16alt
    B = 0b11,  // binary8
};

/// fmt field <-> format descriptor.
[[nodiscard]] FmtCode fmt_code_of(FpFormat format) noexcept;
[[nodiscard]] FpFormat format_of(FmtCode code) noexcept;

/// Decoded view of an encoded instruction word.
struct Decoded {
    sim::InstrKind kind = sim::InstrKind::IntAlu;
    FpOp op = FpOp::Add;       // FpArith / FpCast detail
    FpFormat fmt{8, 23};       // operand format
    FpFormat fmt2{8, 23};      // cast target format
    int lanes = 1;             // 1 scalar; 2/4 vectorial
    int bytes = 0;             // access width for Load/Store
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::uint8_t rs3 = 0;

    friend bool operator==(const Decoded&, const Decoded&) = default;
};

/// Encodes one trace instruction (with its SIMD group's lane count, 1 for
/// scalar) into a 32-bit word. Every sim::Instr kind is encodable.
[[nodiscard]] std::uint32_t encode_instr(const sim::Instr& instr, int lanes = 1);

/// Decodes a word produced by encode_instr. Returns std::nullopt for words
/// outside the supported encoding space.
[[nodiscard]] std::optional<Decoded> decode_instr(std::uint32_t word);

} // namespace tp::isa
