#include "isa/disassembler.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace tp::isa {
namespace {

const char* fmt_suffix(FpFormat format) noexcept {
    switch (fmt_code_of(format)) {
    case FmtCode::S: return "s";
    case FmtCode::H: return "h";
    case FmtCode::AH: return "ah";
    case FmtCode::B: return "b";
    }
    return "?";
}

// Built via append rather than operator+ — GCC 12's -Wrestrict misfires on
// `"f" + std::to_string(r)` (PR105651).
std::string freg(std::uint8_t r) { return std::string{"f"}.append(std::to_string(r)); }
std::string xreg(std::uint8_t r) { return std::string{"x"}.append(std::to_string(r)); }

const char* mem_mnemonic(bool load, int bytes) noexcept {
    if (load) {
        switch (bytes) {
        case 1: return "flb";
        case 2: return "flh";
        default: return "flw";
        }
    }
    switch (bytes) {
    case 1: return "fsb";
    case 2: return "fsh";
    default: return "fsw";
    }
}

const char* arith_mnemonic(FpOp op) noexcept {
    switch (op) {
    case FpOp::Add: return "fadd";
    case FpOp::Sub: return "fsub";
    case FpOp::Mul: return "fmul";
    case FpOp::Fma: return "fmadd";
    case FpOp::Div: return "fdiv";
    case FpOp::Sqrt: return "fsqrt";
    case FpOp::Neg: return "fneg";
    case FpOp::Abs: return "fabs";
    case FpOp::Cmp: return "flt";
    default: return "f?";
    }
}

} // namespace

std::string disassemble(std::uint32_t word) {
    const auto decoded = decode_instr(word);
    if (!decoded) {
        std::ostringstream os;
        os << ".word 0x" << std::hex << std::setw(8) << std::setfill('0') << word;
        return os.str();
    }
    const Decoded& d = *decoded;
    std::ostringstream os;
    switch (d.kind) {
    case sim::InstrKind::IntAlu:
        os << "addi " << xreg(d.rd) << ", " << xreg(d.rs1) << ", 0";
        break;
    case sim::InstrKind::Branch:
        os << "bne " << xreg(d.rs1) << ", " << xreg(d.rs2) << ", .";
        break;
    case sim::InstrKind::Load:
        os << mem_mnemonic(true, d.bytes) << ' ' << freg(d.rd) << ", 0("
           << xreg(d.rs1) << ')';
        break;
    case sim::InstrKind::Store:
        os << mem_mnemonic(false, d.bytes) << ' ' << freg(d.rs2) << ", 0("
           << xreg(d.rs1) << ')';
        break;
    case sim::InstrKind::FpArith:
        if (d.op == FpOp::Fma) {
            os << "fmadd." << fmt_suffix(d.fmt) << ' ' << freg(d.rd) << ", "
               << freg(d.rs1) << ", " << freg(d.rs2) << ", " << freg(d.rs3);
            break;
        }
        os << (d.lanes > 1 ? "v" : "") << arith_mnemonic(d.op) << '.'
           << fmt_suffix(d.fmt) << ' ';
        if (d.op == FpOp::Neg || d.op == FpOp::Abs || d.op == FpOp::Sqrt) {
            os << freg(d.rd) << ", " << freg(d.rs1);
        } else if (d.op == FpOp::Cmp) {
            os << xreg(d.rd) << ", " << freg(d.rs1) << ", " << freg(d.rs2);
        } else {
            os << freg(d.rd) << ", " << freg(d.rs1) << ", " << freg(d.rs2);
        }
        break;
    case sim::InstrKind::FpCast:
        if (d.op == FpOp::FromInt) {
            os << "fcvt." << fmt_suffix(d.fmt2) << ".w " << freg(d.rd) << ", "
               << xreg(d.rs1);
        } else if (d.op == FpOp::ToInt) {
            os << "fcvt.w." << fmt_suffix(d.fmt2) << ' ' << xreg(d.rd) << ", "
               << freg(d.rs1);
        } else {
            os << "fcvt." << fmt_suffix(d.fmt2) << '.' << fmt_suffix(d.fmt) << ' '
               << freg(d.rd) << ", " << freg(d.rs1);
        }
        break;
    }
    return os.str();
}

std::string disassemble(const sim::Instr& instr, int lanes) {
    return disassemble(encode_instr(instr, lanes));
}

void write_listing(const sim::TraceProgram& program, std::ostream& os,
                   std::size_t max_lines) {
    std::size_t lines = 0;
    for (std::size_t i = 0; i < program.instrs.size(); ++i) {
        if (max_lines != 0 && lines >= max_lines) {
            os << "  ... (" << program.instrs.size() - i
               << " more trace entries)\n";
            return;
        }
        const sim::Instr& instr = program.instrs[i];
        if (instr.simd_group != 0) {
            const sim::SimdGroup& group = program.groups[instr.simd_group - 1];
            if (group.last_index != i) continue; // one line per group
            const std::uint32_t word = encode_instr(instr, group.lanes);
            os << "  " << std::hex << std::setw(8) << std::setfill('0') << word
               << std::dec << "  " << disassemble(word) << "    # group "
               << instr.simd_group << ", " << group.lanes << " lanes\n";
            ++lines;
            continue;
        }
        const std::uint32_t word = encode_instr(instr, 1);
        os << "  " << std::hex << std::setw(8) << std::setfill('0') << word
           << std::dec << "  " << disassemble(word) << '\n';
        ++lines;
    }
}

} // namespace tp::isa
