#include "isa/encoding.hpp"

#include <cassert>

namespace tp::isa {
namespace {

constexpr std::uint32_t kOpcodeMask = 0x7f;

// funct5 selectors in the OP-FP space (RISC-V F layout).
constexpr std::uint32_t kFunct5Add = 0b00000;
constexpr std::uint32_t kFunct5Sub = 0b00001;
constexpr std::uint32_t kFunct5Mul = 0b00010;
constexpr std::uint32_t kFunct5Div = 0b00011;
constexpr std::uint32_t kFunct5Sgnj = 0b00100;
constexpr std::uint32_t kFunct5Cvt = 0b01000;  // FP <-> FP
constexpr std::uint32_t kFunct5Sqrt = 0b01011;
constexpr std::uint32_t kFunct5Cmp = 0b10100;
constexpr std::uint32_t kFunct5CvtToInt = 0b11000;
constexpr std::uint32_t kFunct5CvtFromInt = 0b11010;

std::uint8_t reg_of(std::int32_t id) noexcept {
    return id < 0 ? 0 : static_cast<std::uint8_t>(id % 32);
}

std::uint32_t r_type(MajorOpcode opcode, std::uint32_t funct7, std::uint8_t rs2,
                     std::uint8_t rs1, std::uint32_t funct3, std::uint8_t rd) {
    return (funct7 << 25) | (std::uint32_t{rs2} << 20) |
           (std::uint32_t{rs1} << 15) | (funct3 << 12) | (std::uint32_t{rd} << 7) |
           static_cast<std::uint32_t>(opcode);
}

int log2_bytes(int bytes) noexcept {
    switch (bytes) {
    case 1: return 0;
    case 2: return 1;
    case 4: return 2;
    default: return 3;
    }
}

} // namespace

FmtCode fmt_code_of(FpFormat format) noexcept {
    if (format == kBinary16) return FmtCode::H;
    if (format == kBinary16Alt) return FmtCode::AH;
    if (format == kBinary8) return FmtCode::B;
    return FmtCode::S; // binary32 and any non-named format map to S
}

FpFormat format_of(FmtCode code) noexcept {
    switch (code) {
    case FmtCode::S: return kBinary32;
    case FmtCode::H: return kBinary16;
    case FmtCode::AH: return kBinary16Alt;
    case FmtCode::B: return kBinary8;
    }
    return kBinary32;
}

std::uint32_t encode_instr(const sim::Instr& instr, int lanes) {
    const std::uint8_t rd = reg_of(instr.dst);
    const std::uint8_t rs1 = reg_of(instr.src1);
    const std::uint8_t rs2 = reg_of(instr.src2);
    const auto fmt = static_cast<std::uint32_t>(fmt_code_of(instr.fmt));

    switch (instr.kind) {
    case sim::InstrKind::IntAlu:
        // addi x_rd, x_rs1, 0
        return r_type(MajorOpcode::OpImm, 0, 0, rs1, 0b000, rd);
    case sim::InstrKind::Branch:
        // bne x0, x0, 0 (target is immaterial at this abstraction level)
        return r_type(MajorOpcode::Branch, 0, 0, 0, 0b001, 0);
    case sim::InstrKind::Load: {
        const int total = instr.bytes * lanes;
        return r_type(MajorOpcode::Load, 0, 0,
                      static_cast<std::uint8_t>(5 + instr.stream % 24),
                      static_cast<std::uint32_t>(log2_bytes(total)), rd);
    }
    case sim::InstrKind::Store: {
        const int total = instr.bytes * lanes;
        return r_type(MajorOpcode::Store, 0, rs1,
                      static_cast<std::uint8_t>(5 + instr.stream % 24),
                      static_cast<std::uint32_t>(log2_bytes(total)), 0);
    }
    case sim::InstrKind::FpArith: {
        if (instr.op == FpOp::Fma) {
            // R4-type: rs3 in [31:27], fmt in funct2 [26:25].
            const std::uint8_t rs3 = reg_of(instr.src3);
            return (std::uint32_t{rs3} << 27) | (fmt << 25) |
                   (std::uint32_t{rs2} << 20) | (std::uint32_t{rs1} << 15) |
                   (0b000u << 12) | (std::uint32_t{rd} << 7) |
                   static_cast<std::uint32_t>(MajorOpcode::Madd);
        }
        if (lanes > 1) {
            // Vectorial smallfloat op: CUSTOM-0, lanes in funct7[4:3],
            // fmt in funct7[1:0], op selector in funct3.
            const std::uint32_t log2lanes = lanes == 4 ? 2 : 1;
            std::uint32_t sel = 0;
            switch (instr.op) {
            case FpOp::Add: sel = 0b000; break;
            case FpOp::Sub: sel = 0b001; break;
            case FpOp::Mul: sel = 0b010; break;
            default: assert(false && "only add/sub/mul vectorize"); break;
            }
            return r_type(MajorOpcode::Custom0, (log2lanes << 3) | fmt, rs2, rs1,
                          sel, rd);
        }
        std::uint32_t funct5 = kFunct5Add;
        std::uint32_t funct3 = 0b000;
        switch (instr.op) {
        case FpOp::Add: funct5 = kFunct5Add; break;
        case FpOp::Sub: funct5 = kFunct5Sub; break;
        case FpOp::Mul: funct5 = kFunct5Mul; break;
        case FpOp::Div: funct5 = kFunct5Div; break;
        case FpOp::Sqrt: funct5 = kFunct5Sqrt; break;
        case FpOp::Neg:
            funct5 = kFunct5Sgnj;
            funct3 = 0b001; // fsgnjn rd, rs, rs
            break;
        case FpOp::Abs:
            funct5 = kFunct5Sgnj;
            funct3 = 0b010; // fsgnjx rd, rs, rs
            break;
        case FpOp::Cmp:
            funct5 = kFunct5Cmp;
            funct3 = 0b001; // flt
            break;
        default: assert(false && "conversion ops encode as FpCast"); break;
        }
        return r_type(MajorOpcode::OpFp, (funct5 << 2) | fmt, rs2, rs1, funct3, rd);
    }
    case sim::InstrKind::FpCast: {
        if (instr.op == FpOp::FromInt) {
            return r_type(MajorOpcode::OpFp, (kFunct5CvtFromInt << 2) | fmt, 0,
                          rs1, 0b000, rd);
        }
        if (instr.op == FpOp::ToInt) {
            return r_type(MajorOpcode::OpFp, (kFunct5CvtToInt << 2) | fmt, 0, rs1,
                          0b000, rd);
        }
        // FP -> FP: destination fmt in funct7, source fmt in rs2.
        const auto dst_fmt = static_cast<std::uint32_t>(fmt_code_of(instr.fmt2));
        const auto src_fmt = static_cast<std::uint8_t>(fmt_code_of(instr.fmt));
        return r_type(MajorOpcode::OpFp, (kFunct5Cvt << 2) | dst_fmt, src_fmt,
                      rs1, 0b000, rd);
    }
    }
    return 0;
}

std::optional<Decoded> decode_instr(std::uint32_t word) {
    Decoded d;
    const auto opcode = static_cast<MajorOpcode>(word & kOpcodeMask);
    d.rd = static_cast<std::uint8_t>((word >> 7) & 0x1f);
    const std::uint32_t funct3 = (word >> 12) & 0x7;
    d.rs1 = static_cast<std::uint8_t>((word >> 15) & 0x1f);
    d.rs2 = static_cast<std::uint8_t>((word >> 20) & 0x1f);
    const std::uint32_t funct7 = (word >> 25) & 0x7f;

    switch (opcode) {
    case MajorOpcode::OpImm:
        d.kind = sim::InstrKind::IntAlu;
        return d;
    case MajorOpcode::Branch:
        d.kind = sim::InstrKind::Branch;
        return d;
    case MajorOpcode::Load:
        d.kind = sim::InstrKind::Load;
        d.bytes = 1 << funct3;
        return d;
    case MajorOpcode::Store:
        d.kind = sim::InstrKind::Store;
        d.bytes = 1 << funct3;
        return d;
    case MajorOpcode::Madd:
        d.kind = sim::InstrKind::FpArith;
        d.op = FpOp::Fma;
        d.fmt = format_of(static_cast<FmtCode>(funct7 & 0x3));
        d.rs3 = static_cast<std::uint8_t>((word >> 27) & 0x1f);
        return d;
    case MajorOpcode::Custom0: {
        d.kind = sim::InstrKind::FpArith;
        d.fmt = format_of(static_cast<FmtCode>(funct7 & 0x3));
        d.lanes = 1 << ((funct7 >> 3) & 0x3);
        switch (funct3) {
        case 0b000: d.op = FpOp::Add; break;
        case 0b001: d.op = FpOp::Sub; break;
        case 0b010: d.op = FpOp::Mul; break;
        default: return std::nullopt;
        }
        return d;
    }
    case MajorOpcode::OpFp: {
        d.fmt = format_of(static_cast<FmtCode>(funct7 & 0x3));
        const std::uint32_t funct5 = funct7 >> 2;
        d.kind = sim::InstrKind::FpArith;
        switch (funct5) {
        case kFunct5Add: d.op = FpOp::Add; return d;
        case kFunct5Sub: d.op = FpOp::Sub; return d;
        case kFunct5Mul: d.op = FpOp::Mul; return d;
        case kFunct5Div: d.op = FpOp::Div; return d;
        case kFunct5Sqrt: d.op = FpOp::Sqrt; return d;
        case kFunct5Sgnj:
            d.op = funct3 == 0b001 ? FpOp::Neg : FpOp::Abs;
            return d;
        case kFunct5Cmp: d.op = FpOp::Cmp; return d;
        case kFunct5Cvt:
            d.kind = sim::InstrKind::FpCast;
            d.op = FpOp::Add; // generic FP->FP conversion marker
            d.fmt2 = d.fmt;   // funct7 carries the destination fmt
            d.fmt = format_of(static_cast<FmtCode>(d.rs2 & 0x3));
            return d;
        case kFunct5CvtFromInt:
            d.kind = sim::InstrKind::FpCast;
            d.op = FpOp::FromInt;
            d.fmt2 = d.fmt;
            return d;
        case kFunct5CvtToInt:
            d.kind = sim::InstrKind::FpCast;
            d.op = FpOp::ToInt;
            d.fmt2 = d.fmt;
            return d;
        default: return std::nullopt;
        }
    }
    }
    return std::nullopt;
}

} // namespace tp::isa
